"""The `repro.api` facade: the exact public surface, and nothing else.

The facade is the compatibility contract — these tests pin it:

* ``__all__`` is exactly the documented surface (a name added or dropped is
  an API change someone must notice);
* every exported name resolves, documents itself through ``help()``, and
  reaches the user without them importing any private ``repro.*`` module;
* the three goal classes share one keyword-consistent ``create`` surface;
* the entry points actually work (one cheap synthesize/run_goals round).
"""

import io
import pydoc

import pytest

import repro.api as api

from conftest import tiny_config, tiny_goal

DOCUMENTED_SURFACE = {
    "AsymptoticGoal",
    "ExampleGoal",
    "SynthesisConfig",
    "SynthesisGoal",
    "open_cache",
    "run_goals",
    "serve",
    "synthesize",
}


class TestSurface:
    def test_all_is_exactly_the_documented_surface(self):
        assert set(api.__all__) == DOCUMENTED_SURFACE
        assert sorted(api.__all__) == list(api.__all__), "keep __all__ sorted"

    def test_every_name_resolves_and_is_documented(self):
        for name in api.__all__:
            obj = getattr(api, name)
            assert obj is not None
            doc = pydoc.getdoc(obj)
            assert doc, f"api.{name} has no docstring"

    def test_every_name_round_trips_through_help(self):
        # help() must render the full surface without raising; this is what a
        # user in a REPL actually sees.
        buffer = io.StringIO()
        pydoc.Helper(output=buffer)(api)
        rendered = buffer.getvalue()
        for name in api.__all__:
            assert name in rendered

    def test_star_import_exposes_no_private_modules(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        exported = {name for name in namespace if not name.startswith("__")}
        assert exported == DOCUMENTED_SURFACE


class TestGoalConstruction:
    def test_create_is_keyword_consistent_across_goal_kinds(self):
        base = tiny_goal()
        plain = api.SynthesisGoal.create(
            name=base.name, schema=base.schema, components=base.components
        )
        example = api.ExampleGoal.create(
            name=base.name, schema=base.schema, components=base.components, examples=()
        )
        assert plain.name == example.name == base.name
        assert example.examples == ()

    def test_asymptotic_create_keywords(self):
        from repro.logic import terms as t
        from repro.typing.types import TypeSchema, arrow, bool_type, list_type, tvar_type

        xs = t.data_var("xs")
        schema = TypeSchema(
            ("a",),
            arrow(
                ("xs", list_type(tvar_type("a"))),
                bool_type(t.Iff(t.Var("_v", t.BOOL), t.len_(xs).eq(0))),
            ),
        )
        goal = api.AsymptoticGoal.create(
            name="isEmpty",
            schema=schema,
            components=(),
            bound="O(1)",
            size_of="xs",
            ladder=(1, 2),
        )
        assert goal.bound == "O(1)"
        assert goal.size_of == ("xs",)
        assert goal.ladder == (1, 2)

    def test_asymptotic_rejects_unknown_bound_class(self):
        base = tiny_goal()
        with pytest.raises(ValueError, match="bound class"):
            api.AsymptoticGoal.create(
                name=base.name,
                schema=base.schema,
                components=base.components,
                bound="O(n^3)",
            )


class TestEntryPoints:
    def test_synthesize_round_trip(self):
        result = api.synthesize(tiny_goal(), tiny_config())
        assert result.succeeded

    def test_run_goals_round_trip(self):
        (result,) = api.run_goals([tiny_goal()], tiny_config(), workers=1)
        assert result.succeeded

    def test_open_cache_round_trips_through_run_goals(self, tmp_path):
        cache = api.open_cache(str(tmp_path / "cache"))
        (cold,) = api.run_goals([tiny_goal()], tiny_config(), cache=cache)
        (warm,) = api.run_goals([tiny_goal()], tiny_config(), cache=cache)
        assert str(cold.program) == str(warm.program)
        assert cache.stats.hits >= 1
