"""Tests for the batch synthesis service.

Covers the three pillars of the subsystem:

* **codecs + specs** — every Table 1/Table 2 goal round-trips through the
  declarative JSON spec format, programs round-trip through the wire codec;
* **fingerprints + cache** — fingerprints are stable across recomputation and
  encodings, sensitive to every input, and the persistent cache hits, evicts
  (LRU) and survives process re-instantiation;
* **scheduler determinism** — the fast Table 1 subset synthesized serially
  and through the pool (2 and 4 workers) is byte-identical, with stable stats
  aggregation, working per-job timeouts and a fully warm second run.
"""

import json
import os
import time

import pytest

from repro.benchsuite.definitions import table1_benchmarks, table2_benchmarks
from repro.benchsuite.runner import benchmark_config, selected_benchmarks
from repro.core import SynthesisConfig, SynthesisGoal, library, synthesize
from repro.logic import terms as t
from repro.service.cache import ResultCache
from repro.service.codec import (
    CodecError,
    config_from_json,
    config_from_mode,
    config_to_json,
    goal_from_json,
    goal_to_json,
    program_from_json,
    program_to_json,
    term_from_json,
    term_to_json,
)
from repro.service.fingerprint import canonical_json, job_fingerprint
from repro.service.scheduler import BatchScheduler, job_for_goal
from repro.service.specs import (
    export_table_spec,
    jobs_from_spec,
    load_spec,
    validate_spec,
    write_spec,
)
from repro.typing.types import TypeSchema, arrow, bool_type

from conftest import tiny_config, tiny_goal

ALL_BENCHMARKS = table1_benchmarks() + table2_benchmarks()


# ---------------------------------------------------------------------------
# Codec round-trips
# ---------------------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.key)
    def test_goal_roundtrip(self, bench):
        encoded = goal_to_json(bench.goal)
        decoded = goal_from_json(json.loads(json.dumps(encoded)))
        assert decoded == bench.goal
        assert decoded.schema == bench.goal.schema
        assert [c.name for c in decoded.components] == [c.name for c in bench.goal.components]

    def test_term_roundtrip_covers_exotic_nodes(self):
        x = t.int_var("x")
        term = t.conj(
            t.Ite(x > 0, t.ONE, t.ZERO).eq(t.ONE),
            t.SetAll("e", t.elems(t.data_var("xs")), t.Var("e", t.INT) >= x),
            t.SetSubset(t.EmptySet(), t.SetSingleton(x)),
        )
        assert term_from_json(term_to_json(term)) == term

    def test_program_roundtrip(self):
        result = synthesize(tiny_goal(), tiny_config())
        assert result.succeeded
        rebuilt = program_from_json(program_to_json(result.program))
        assert rebuilt == result.program
        assert str(rebuilt) == str(result.program)

    def test_config_roundtrip_all_modes(self):
        for mode in ("resyn", "synquid", "eac", "noninc", "constant_resource"):
            config = config_from_mode(mode, {"max_arg_depth": 3})
            assert config_from_json(config_to_json(config)) == config

    def test_config_rejects_unknown_fields(self):
        with pytest.raises(CodecError):
            config_from_json({"no_such_field": 1})

    def test_goal_rejects_foreign_components(self):
        from repro.core.components import Component

        foreign = Component("mystery", tiny_goal().schema, lambda xs: None)
        goal = SynthesisGoal.create("g", tiny_goal().schema, [foreign])
        with pytest.raises(CodecError):
            goal_to_json(goal)

    def test_result_record_roundtrip(self):
        goal = tiny_goal()
        result = synthesize(goal, tiny_config())
        record = json.loads(json.dumps(result.to_record()))
        rebuilt = result.from_record(record, goal)
        assert str(rebuilt.program) == str(result.program)
        assert rebuilt.candidates_checked == result.candidates_checked
        assert rebuilt.stats == result.stats


# ---------------------------------------------------------------------------
# Declarative specs
# ---------------------------------------------------------------------------


class TestSpecs:
    def test_exported_specs_cover_all_benchmarks(self):
        spec1 = export_table_spec("table1")
        spec2 = export_table_spec("table2")
        assert {e["key"] for e in spec1["goals"]} == {b.key for b in table1_benchmarks()}
        assert {e["key"] for e in spec2["goals"]} == {b.key for b in table2_benchmarks()}

    @pytest.mark.parametrize("table", ["table1", "table2"])
    def test_spec_goals_roundtrip_to_benchmark_goals(self, table):
        selected = table1_benchmarks() if table == "table1" else table2_benchmarks()
        benchmarks = {b.key: b for b in selected}
        spec = export_table_spec(table)
        for entry in spec["goals"]:
            assert goal_from_json(entry["goal"]) == benchmarks[entry["key"]].goal

    def test_committed_specs_in_sync_with_definitions(self):
        """specs/*.json must match a fresh export (CI re-checks this too)."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for table in ("table1", "table2"):
            path = os.path.join(root, "specs", f"{table}.json")
            with open(path) as handle:
                committed = json.load(handle)
            assert committed == export_table_spec(table), (
                f"{path} is stale; regenerate with `python -m repro.service export`"
            )

    def test_jobs_from_spec_match_runner_configs(self):
        spec = export_table_spec("table1")
        jobs = jobs_from_spec(spec)
        expected = []
        for bench in selected_benchmarks("table1"):
            for mode in ("resyn", "synquid"):
                expected.append((f"{bench.key}/{mode}", benchmark_config(bench, mode)))
        assert [(j.tag, j.config()) for j in jobs] == expected

    def test_constant_resource_flag_selects_ct_config(self):
        spec = export_table_spec("table2")
        jobs = {j.tag: j for j in jobs_from_spec(spec)}
        assert jobs["ct_compare/resyn"].config().checker.constant_resource
        assert not jobs["compare/resyn"].config().checker.constant_resource

    def test_include_slow_and_mode_filters(self):
        spec = export_table_spec("table1")
        fast = jobs_from_spec(spec, modes=["resyn"])
        full = jobs_from_spec(spec, modes=["resyn"], include_slow=True)
        assert len(full) == len(table1_benchmarks())
        assert len(fast) == len(selected_benchmarks("table1"))

    def test_load_spec_json_and_validation(self, tmp_path):
        spec = export_table_spec("table1")
        path = str(tmp_path / "suite.json")
        write_spec(spec, path)
        assert load_spec(path) == spec
        with pytest.raises(CodecError):
            validate_spec({"format": "something-else"})
        broken = dict(spec, goals=spec["goals"] + [spec["goals"][0]])  # duplicate key
        with pytest.raises(CodecError):
            validate_spec(broken)

    def test_load_spec_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = str(tmp_path / "suite.toml")
        with open(path, "w") as handle:
            handle.write(
                'format = "resyn-goals/1"\n'
                'suite = "toml-demo"\n'
                "\n"
                "[[goals]]\n"
                'key = "probe"\n'
                'modes = ["resyn"]\n'
                "\n"
                "[goals.goal]\n"
                'name = "probe"\n'
                "components = []\n"
                "\n"
                "[goals.goal.schema]\n"
                "tvars = []\n"
                "\n"
                "[goals.goal.schema.body]\n"
                't = "arrow"\n'
                'param = "b"\n'
                'param_type = { t = "rtype", base = { t = "bool" } }\n'
                'result = { t = "rtype", base = { t = "bool" } }\n'
            )
        spec = load_spec(path)
        (job,) = jobs_from_spec(spec)
        assert job.tag == "probe/resyn"
        assert job.goal().name == "probe"


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_recomputation_and_processes(self):
        goal, config = tiny_goal(), tiny_config()
        first = job_fingerprint(goal, config)
        second = job_fingerprint(goal_from_json(goal_to_json(goal)), tiny_config())
        assert first == second
        assert first == goal.fingerprint(config)

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_sensitive_to_every_input(self):
        goal, config = tiny_goal(), tiny_config()
        base = job_fingerprint(goal, config)
        assert job_fingerprint(tiny_goal("other"), config) != base
        assert job_fingerprint(goal, SynthesisConfig.synquid()) != base
        deeper = SynthesisConfig.resyn(max_arg_depth=1, max_match_depth=2, max_cond_depth=0)
        assert job_fingerprint(goal, deeper) != base
        with_lib = SynthesisGoal.create(goal.name, goal.schema, library("lt"))
        assert job_fingerprint(with_lib, config) != base

    def test_golden_fingerprint(self):
        """Pinned digest of a minimal payload; catches silent codec drift.

        Any change to the codec encoding, canonicalization or the
        fingerprinted config fields orphans every persistent cache — if this
        assertion fails intentionally, bump FINGERPRINT_VERSION and update
        the digest.
        """
        goal = SynthesisGoal.create(
            "probe",
            TypeSchema((), arrow(("b", bool_type()), bool_type())),
            library(),
        )
        config = SynthesisConfig.resyn()
        assert (
            job_fingerprint(goal, config)
            == "942b57ab3f051ede726850fb47570c40e9a88db89a7bb4d644c922c22b10ad11"
        )


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_store_lookup_persistence(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.lookup("ab" * 32) is None
        cache.store("ab" * 32, {"goal_name": "g", "program": None, "seconds": 0.1})
        entry = cache.lookup("ab" * 32)
        assert entry["goal_name"] == "g"
        assert entry["fingerprint"] == "ab" * 32
        # A fresh instance over the same directory sees the entry (persistence).
        reopened = ResultCache(str(tmp_path / "cache"))
        assert reopened.lookup("ab" * 32)["goal_name"] == "g"
        assert reopened.stats.hits == 1
        assert cache.stats.misses == 1 and cache.stats.stores == 1

    def test_lru_eviction(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), max_entries=2)
        fingerprints = [format(i, "02d") * 32 for i in range(3)]
        cache.store(fingerprints[0], {"n": 0})
        time.sleep(0.02)
        cache.store(fingerprints[1], {"n": 1})
        time.sleep(0.02)
        # Touch entry 0 so entry 1 becomes the LRU victim.
        assert cache.lookup(fingerprints[0]) is not None
        time.sleep(0.02)
        cache.store(fingerprints[2], {"n": 2})
        assert cache.stats.evictions == 1
        assert cache.lookup(fingerprints[1]) is None  # evicted
        assert cache.lookup(fingerprints[0]) is not None
        assert cache.lookup(fingerprints[2]) is not None
        assert len(cache) == 2

    def test_update_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert not cache.update("cd" * 32, extra=1)
        cache.store("cd" * 32, {"goal_name": "g"})
        assert cache.update("cd" * 32, measured_bounds={"resyn": "|xs|"})
        assert cache.lookup("cd" * 32)["measured_bounds"] == {"resyn": "|xs|"}
        assert cache.clear() == 1
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def _table1_jobs():
    jobs = []
    for bench in selected_benchmarks("table1"):
        for mode in ("resyn", "synquid"):
            jobs.append(
                job_for_goal(bench.goal, benchmark_config(bench, mode), tag=f"{bench.key}/{mode}")
            )
    return jobs


class TestScheduler:
    def test_parallel_output_byte_identical_to_serial(self):
        """The acceptance property: serial == 2 workers == 4 workers, byte-wise."""
        jobs = _table1_jobs()
        serial = BatchScheduler(workers=1)
        serial_results = serial.run(jobs)
        serial_programs = [r.program_text for r in serial_results]
        assert all(r.succeeded for r in serial_results)

        # Reference: direct in-process synthesize() calls.
        direct = []
        for bench in selected_benchmarks("table1"):
            for mode in ("resyn", "synquid"):
                direct.append(str(synthesize(bench.goal, benchmark_config(bench, mode)).program))
        assert serial_programs == direct

        aggregates = {1: serial.stats.counters}
        for workers in (2, 4):
            scheduler = BatchScheduler(workers=workers)
            results = scheduler.run(jobs)
            assert [r.tag for r in results] == [j.tag for j in jobs]  # submission order
            assert [r.program_text for r in results] == serial_programs
            aggregates[workers] = scheduler.stats.counters

        # Stable stats aggregation: the search-level counters are process- and
        # placement-independent, so every run must aggregate identical sums.
        for key in ("candidates_checked", "cegis_counterexamples", "eterm_checks"):
            values = {workers: agg.get(key, 0) for workers, agg in aggregates.items()}
            assert len(set(values.values())) == 1, (key, values)

    def test_scheduler_matches_runner_rows(self):
        from repro.benchsuite.runner import run_table

        rows = run_table("table1", ("resyn",), workers=2)
        for row in rows:
            direct = synthesize(row.benchmark.goal, benchmark_config(row.benchmark, "resyn"))
            assert str(row.results["resyn"].program) == str(direct.program)

    def test_cache_hits_and_warm_run(self, tmp_path):
        goal, config = tiny_goal(), tiny_config()
        job = job_for_goal(goal, config, tag="tiny")
        cache = ResultCache(str(tmp_path / "cache"))

        cold = BatchScheduler(workers=1, cache=cache)
        (cold_result,) = cold.run([job])
        assert cold.stats.synth_runs == 1 and cold.stats.cache_hits == 0
        assert not cold_result.cache_hit

        warm = BatchScheduler(workers=1, cache=ResultCache(str(tmp_path / "cache")))
        (warm_result,) = warm.run([job])
        assert warm.stats.synth_runs == 0 and warm.stats.cache_hits == 1
        assert warm_result.cache_hit
        assert warm_result.program_text == cold_result.program_text
        result = warm_result.to_synthesis_result(goal)
        assert str(result.program) == cold_result.program_text

    def test_in_batch_deduplication(self):
        job = job_for_goal(tiny_goal(), tiny_config(), tag="a")
        twin = job_for_goal(tiny_goal(), tiny_config(), tag="b")
        assert job.fingerprint == twin.fingerprint
        scheduler = BatchScheduler(workers=1)
        first, second = scheduler.run([job, twin])
        assert scheduler.stats.synth_runs == 1
        assert scheduler.stats.deduplicated == 1
        assert second.deduplicated and not first.deduplicated
        assert first.program_text == second.program_text

    def test_per_job_timeout(self):
        bench = next(b for b in selected_benchmarks("table1") if b.key == "t1_append")
        job = job_for_goal(
            bench.goal, benchmark_config(bench, "resyn"), tag="doomed", timeout=1e-4
        )
        scheduler = BatchScheduler(workers=1)
        (result,) = scheduler.run([job])
        assert not result.succeeded
        assert result.timed_out
        assert scheduler.stats.timeouts == 1

    def test_timed_out_results_never_poison_the_cache(self, tmp_path):
        """A timeout is clock-dependent, not a property of the fingerprint:
        it must not be persisted, and a later generous-budget run must
        re-invoke the synthesizer and succeed."""
        bench = next(b for b in selected_benchmarks("table1") if b.key == "t1_append")
        config = benchmark_config(bench, "resyn")
        cache = ResultCache(str(tmp_path / "cache"))

        doomed = job_for_goal(bench.goal, config, tag="doomed", timeout=1e-4)
        scheduler = BatchScheduler(workers=1, cache=cache)
        (first,) = scheduler.run([doomed])
        assert first.timed_out and not first.succeeded
        assert len(cache) == 0  # failure not persisted

        patient = job_for_goal(bench.goal, config, tag="patient")
        retry = BatchScheduler(workers=1, cache=cache)
        (second,) = retry.run([patient])
        assert retry.stats.synth_runs == 1 and retry.stats.cache_hits == 0
        assert second.succeeded
        assert len(cache) == 1  # the success is persisted

    def test_dedup_respects_differing_timeouts(self):
        """Same fingerprint, different budgets: the generous job must not
        inherit the stingy job's timeout failure."""
        bench = next(b for b in selected_benchmarks("table1") if b.key == "t1_append")
        config = benchmark_config(bench, "resyn")
        doomed = job_for_goal(bench.goal, config, tag="doomed", timeout=1e-4)
        patient = job_for_goal(bench.goal, config, tag="patient")
        assert doomed.fingerprint == patient.fingerprint
        scheduler = BatchScheduler(workers=1)
        first, second = scheduler.run([doomed, patient])
        assert scheduler.stats.synth_runs == 2  # no dedup across budgets
        assert first.timed_out and not first.succeeded
        assert second.succeeded and not second.deduplicated

    def test_cache_hit_restores_timed_out_flag(self, tmp_path):
        """Entries written by other tooling may carry timed_out; a hit must
        surface it instead of defaulting to False."""
        cache = ResultCache(str(tmp_path / "cache"))
        job = job_for_goal(tiny_goal(), tiny_config(), tag="stale")
        cache.store(job.fingerprint, {"goal_name": "isEmpty", "program": None, "timed_out": True})
        scheduler = BatchScheduler(workers=1, cache=ResultCache(str(tmp_path / "cache")))
        (result,) = scheduler.run([job])
        assert result.cache_hit and result.timed_out
        assert scheduler.stats.timeouts == 1

    def test_eviction_is_batched_for_large_caps(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), max_entries=20)
        for i in range(21):
            cache.store(format(i, "02d") * 32, {"n": i})
            time.sleep(0.002)
        # Overflowing a cap of 20 evicts down to 18 (10% headroom), so the
        # next stores are scan-free.
        assert len(cache) == 18
        assert cache.stats.evictions == 3

    def test_cancel_marks_unstarted_jobs(self):
        scheduler = BatchScheduler(workers=1)
        scheduler.cancel()
        jobs = [job_for_goal(tiny_goal(), tiny_config(), tag="x")]
        # run() resets cancellation; cancel mid-run is exercised via the pool's
        # KeyboardInterrupt path, so here we only check the reset contract.
        (result,) = scheduler.run(jobs)
        assert result.succeeded

    def test_run_goals_roundtrip(self):
        scheduler = BatchScheduler(workers=1)
        (result,) = scheduler.run_goals([tiny_goal()], tiny_config())
        assert result.succeeded
        assert result.goal.name == "isEmpty"
