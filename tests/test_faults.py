"""Tests for the fault-injection harness and the fault-tolerance machinery.

The contract under test: with faults injected (worker crashes, hangs, cache
corruption, spawn failures) a batch run still *completes*, within bounded
wall-clock, and — whenever recovery is possible — produces records
byte-identical to a fault-free run.  Chaos is deterministic: the same plan
over the same job stream injects exactly the same faults.
"""

import json
import os
import time

import pytest

from repro.service import faults
from repro.service.cache import ResultCache, record_checksum
from repro.service.scheduler import (
    POISON_KILLS,
    BatchScheduler,
    JobResult,
    job_for_goal,
)

from conftest import baseline_records, canon, records_of, tiny_config, tiny_goal, tiny_jobs


# ---------------------------------------------------------------------------
# The plan itself: parsing, determinism, activation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = faults.FaultPlan.parse("worker.crash=0.4:once,cache.read_corrupt=1.0", seed=7)
        assert plan.rules[faults.WORKER_CRASH] == faults.FaultRule(rate=0.4, once=True)
        assert plan.rules[faults.CACHE_READ_CORRUPT] == faults.FaultRule(rate=1.0)
        reparsed = faults.FaultPlan.parse(plan.to_spec(), seed=7)
        assert reparsed.rules == plan.rules

    def test_bare_point_means_rate_one(self):
        plan = faults.FaultPlan.parse("worker.hang")
        assert plan.rate(faults.WORKER_HANG) == 1.0

    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultSpecError):
            faults.FaultPlan.parse("worker.explode=1.0")

    @pytest.mark.parametrize("bad", ["worker.crash=1.5", "worker.crash=-0.1", "worker.crash=x"])
    def test_bad_rate_rejected(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.FaultPlan.parse(bad)

    def test_empty_spec_is_inert(self):
        assert not faults.FaultPlan.parse(None).active
        assert not faults.FaultPlan.parse("").active
        assert not faults.FaultPlan.parse("worker.crash=0.0").active

    def test_decisions_are_deterministic(self):
        plan_a = faults.FaultPlan.parse("worker.crash=0.5", seed=3)
        plan_b = faults.FaultPlan.parse("worker.crash=0.5", seed=3)
        decisions_a = [plan_a.fires(faults.WORKER_CRASH, f"fp{i}", 0) for i in range(64)]
        decisions_b = [plan_b.fires(faults.WORKER_CRASH, f"fp{i}", 0) for i in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)  # rate 0.5 actually splits

    def test_seed_changes_decisions(self):
        keys = [f"fp{i}" for i in range(64)]
        with_seed = [
            faults.FaultPlan.parse("worker.crash=0.5", seed=s).fires(faults.WORKER_CRASH, k)
            for s in (0, 1)
            for k in keys
        ]
        assert with_seed[:64] != with_seed[64:]

    def test_once_limits_to_first_attempt(self):
        plan = faults.FaultPlan.parse("worker.crash=1.0:once")
        assert plan.fires(faults.WORKER_CRASH, "fp", 0)
        assert not plan.fires(faults.WORKER_CRASH, "fp", 1)
        always = faults.FaultPlan.parse("worker.crash=1.0")
        assert always.fires(faults.WORKER_CRASH, "fp", 0)
        assert always.fires(faults.WORKER_CRASH, "fp", 1)

    def test_env_activation(self, monkeypatch):
        assert not faults.plan().active
        monkeypatch.setenv(faults.ENV_SPEC, "pool.spawn=1.0")
        monkeypatch.setenv(faults.ENV_SEED, "5")
        plan = faults.plan()
        assert plan.active and plan.seed == 5 and plan.rate(faults.POOL_SPAWN) == 1.0
        monkeypatch.delenv(faults.ENV_SPEC)
        assert not faults.plan().active

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "pool.spawn=1.0")
        faults.configure("worker.hang=1.0")
        assert faults.plan().rate(faults.POOL_SPAWN) == 0.0
        assert faults.plan().rate(faults.WORKER_HANG) == 1.0
        faults.configure(None)
        assert faults.plan().rate(faults.POOL_SPAWN) == 1.0


# ---------------------------------------------------------------------------
# Worker crash -> retry -> identical record
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_once_retries_to_identical_records(self):
        jobs = tiny_jobs(2)
        reference = baseline_records(jobs)

        faults.configure("worker.crash=1.0:once")
        scheduler = BatchScheduler(workers=2)
        results = scheduler.run(jobs)

        assert records_of(results) == reference
        assert all(result.succeeded for result in results)
        assert all(result.attempts == 2 for result in results)  # crash + retry
        assert scheduler.stats.worker_kills == 2
        assert scheduler.stats.retries == 2
        assert scheduler.stats.pool_rebuilds >= 1
        assert scheduler.stats.poisoned == 0

    def test_chaos_is_reproducible(self):
        jobs = tiny_jobs(2)
        faults.configure("worker.crash=1.0:once", seed=11)
        first = records_of(BatchScheduler(workers=2).run(jobs))
        faults.configure("worker.crash=1.0:once", seed=11)
        second = records_of(BatchScheduler(workers=2).run(jobs))
        assert first == second

    def test_crash_with_no_retries_is_an_error(self):
        jobs = tiny_jobs(1, retries=0)
        faults.configure("worker.crash=1.0")
        scheduler = BatchScheduler(workers=2)
        (result,) = scheduler.run(jobs)
        assert result.record is None
        assert result.error is not None and "crash" in result.error
        assert scheduler.stats.errors == 1
        assert scheduler.stats.retries == 0

    def test_serial_backend_never_injects_worker_faults(self):
        jobs = tiny_jobs(1)
        reference = baseline_records(jobs)
        faults.configure("worker.crash=1.0,worker.hang=1.0")
        # workers=1 runs in-process: a crash fault here would kill pytest.
        results = BatchScheduler(workers=1).run(jobs)
        assert records_of(results) == reference


# ---------------------------------------------------------------------------
# Worker hang -> hard deadline
# ---------------------------------------------------------------------------


class TestHardDeadline:
    SOFT = 0.3
    GRACE = 0.4

    def test_hang_is_killed_within_soft_plus_grace(self):
        jobs = tiny_jobs(1, timeout=self.SOFT, retries=0)
        faults.configure("worker.hang=1.0")
        scheduler = BatchScheduler(workers=2, grace=self.GRACE)
        start = time.monotonic()
        (result,) = scheduler.run(jobs)
        elapsed = time.monotonic() - start
        assert result.hard_timed_out and result.timed_out
        assert result.record is None
        assert scheduler.stats.hard_timeouts == 1
        assert scheduler.stats.worker_kills == 1
        # Bounded: the deadline is soft+grace; the rest is kill/join overhead.
        assert elapsed < self.SOFT + self.GRACE + 10.0

    def test_hang_once_recovers_to_identical_record(self):
        # Soft budget generous enough for the real run (<50ms), small enough
        # that the injected hang is killed quickly; the retry then succeeds
        # and the final record matches the fault-free reference.
        jobs = tiny_jobs(1, timeout=0.5)
        reference = baseline_records(jobs)
        faults.configure("worker.hang=1.0:once")
        scheduler = BatchScheduler(workers=2, grace=self.GRACE)
        results = scheduler.run(jobs)
        assert records_of(results) == reference
        assert results[0].succeeded
        assert scheduler.stats.hard_timeouts == 1
        assert scheduler.stats.retries == 1

    def test_hard_timeout_result_is_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = tiny_jobs(1, timeout=self.SOFT, retries=0)
        faults.configure("worker.hang=1.0")
        BatchScheduler(workers=2, cache=cache, grace=self.GRACE).run(jobs)
        faults.configure(None)
        scheduler = BatchScheduler(workers=1, cache=cache)
        (result,) = scheduler.run(jobs)
        assert result.succeeded and not result.cache_hit


# ---------------------------------------------------------------------------
# Poison jobs
# ---------------------------------------------------------------------------


class TestPoisonJobs:
    def test_persistent_crasher_terminates_as_poison(self):
        # A generous retry budget must NOT win over poison detection: the job
        # kills POISON_KILLS workers and becomes an error, never a spin.
        jobs = tiny_jobs(1, retries=10)
        faults.configure("worker.crash=1.0")
        scheduler = BatchScheduler(workers=2)
        (result,) = scheduler.run(jobs)
        assert result.record is None
        assert result.error is not None and "poison" in result.error
        assert result.attempts == POISON_KILLS
        assert scheduler.stats.poisoned == 1
        assert scheduler.stats.worker_kills == POISON_KILLS

    def test_poison_batch_still_terminates_every_job(self):
        # Every job is a persistent crasher: the run must still terminate,
        # with every job resolved to an error result (no hang, no spin).
        jobs = tiny_jobs(3, retries=10)
        scheduler = BatchScheduler(workers=2)
        faults.configure("worker.crash=1.0")
        results = scheduler.run(jobs)
        assert len(results) == 3
        assert all(result.record is None and result.error for result in results)
        assert scheduler.stats.poisoned == 3


# ---------------------------------------------------------------------------
# Cache integrity: corruption -> quarantine -> recompute
# ---------------------------------------------------------------------------


class TestCacheQuarantine:
    def seed_cache(self, tmp_path, jobs):
        cache = ResultCache(str(tmp_path / "cache"))
        BatchScheduler(workers=1, cache=cache).run(jobs)
        return cache

    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        jobs = tiny_jobs(1)
        reference = baseline_records(jobs)
        cache = self.seed_cache(tmp_path, jobs)
        path = cache._entry_path(jobs[0].fingerprint)
        with open(path, "r+b") as handle:  # bit rot
            handle.seek(10)
            handle.write(b"\xff\xff\xff")

        scheduler = BatchScheduler(workers=1, cache=cache)
        results = scheduler.run(jobs)
        assert records_of(results) == reference  # recomputed, not served rotten
        assert not results[0].cache_hit
        assert cache.stats.quarantined == 1
        assert cache.quarantined_entries() == [os.path.basename(path)]
        # The recompute stored a fresh entry; the next run is a clean hit.
        (warm,) = BatchScheduler(workers=1, cache=cache).run(jobs)
        assert warm.cache_hit and canon(warm.record) == reference[0]

    def test_injected_read_corruption_roundtrip(self, tmp_path):
        jobs = tiny_jobs(1)
        reference = baseline_records(jobs)
        cache = self.seed_cache(tmp_path, jobs)
        faults.configure("cache.read_corrupt=1.0:once")
        scheduler = BatchScheduler(workers=1, cache=cache)
        results = scheduler.run(jobs)
        assert records_of(results) == reference
        assert cache.stats.quarantined == 1
        assert len(cache.quarantined_entries()) == 1

    def test_torn_write_is_caught_on_next_read(self, tmp_path):
        jobs = tiny_jobs(1)
        reference = baseline_records(jobs)
        cache = ResultCache(str(tmp_path / "cache"))
        faults.configure("cache.write_torn=1.0:once")
        BatchScheduler(workers=1, cache=cache).run(jobs)  # store is torn
        faults.configure(None)
        scheduler = BatchScheduler(workers=1, cache=cache)
        results = scheduler.run(jobs)  # torn entry quarantined, recomputed
        assert records_of(results) == reference
        assert not results[0].cache_hit
        assert cache.stats.quarantined == 1

    def test_checksum_stripped_from_loaded_records(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.store("ab" * 32, {"program_text": "x", "seconds": 0.1})
        entry = cache.lookup("ab" * 32)
        assert entry is not None and "checksum" not in entry

    def test_missing_checksum_is_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        fingerprint = "cd" * 32
        path = cache._entry_path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:  # a pre-checksum (v1) era entry
            json.dump({"program_text": "x"}, handle)
        assert cache.lookup(fingerprint) is None
        assert cache.stats.quarantined == 1

    def test_record_checksum_ignores_embedded_checksum(self):
        entry = {"a": 1, "b": [1, 2]}
        digest = record_checksum(entry)
        assert record_checksum({**entry, "checksum": digest}) == digest

    def test_io_errors_are_counted_not_swallowed(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.store("ef" * 32, {"program_text": "x"})

        def broken_utime(*args, **kwargs):
            raise OSError("disk says no")

        monkeypatch.setattr(os, "utime", broken_utime)
        assert cache.lookup("ef" * 32) is not None  # hit still served
        assert cache.stats.io_errors == 1
        assert cache.stats.as_dict()["cache_io_errors"] == 1


# ---------------------------------------------------------------------------
# Pool breakage -> serial degradation
# ---------------------------------------------------------------------------


class TestPoolDegradation:
    def test_spawn_failure_degrades_to_serial(self):
        jobs = tiny_jobs(2)
        reference = baseline_records(jobs)
        faults.configure("pool.spawn=1.0")  # no worker can ever spawn
        scheduler = BatchScheduler(workers=2)
        results = scheduler.run(jobs)
        assert records_of(results) == reference
        assert scheduler.stats.degraded_serial == 1

    def test_partial_spawn_failure_runs_on_surviving_workers(self):
        jobs = tiny_jobs(2)
        reference = baseline_records(jobs)
        faults.configure("pool.spawn=1.0:once")  # first spawn fails, rest live
        scheduler = BatchScheduler(workers=2)
        results = scheduler.run(jobs)
        assert records_of(results) == reference
        assert scheduler.stats.degraded_serial == 0


# ---------------------------------------------------------------------------
# Satellites: non-strict results, spawn-safe queue accounting
# ---------------------------------------------------------------------------


class TestFailureResults:
    def test_strict_to_synthesis_result_raises(self):
        goal = tiny_goal()
        cancelled = JobResult(tag="t", fingerprint="f", cancelled=True)
        with pytest.raises(ValueError, match="cancelled"):
            cancelled.to_synthesis_result(goal)

    def test_non_strict_returns_explicit_failure(self):
        goal = tiny_goal()
        for job_result, expected in [
            (JobResult(tag="t", fingerprint="f", cancelled=True), "cancelled"),
            (JobResult(tag="t", fingerprint="f", error="boom"), "boom"),
            (
                JobResult(tag="t", fingerprint="f", timed_out=True, hard_timed_out=True),
                "hard timeout",
            ),
        ]:
            result = job_result.to_synthesis_result(goal, strict=False)
            assert result.program is None
            assert expected in result.stats["service_failure"]

    def test_run_goals_non_strict_survives_poison(self):
        faults.configure("worker.crash=1.0")
        scheduler = BatchScheduler(workers=2)
        goals = [tiny_goal("g0"), tiny_goal("g1")]
        results = scheduler.run_goals(goals, tiny_config(), strict=False)
        assert [r.goal.name for r in results] == ["g0", "g1"]
        assert all(r.program is None and "service_failure" in r.stats for r in results)

    def test_queue_seconds_zero_under_spawn_clock_domain(self):
        scheduler = BatchScheduler(workers=0)
        payload = scheduler._payload(tiny_jobs(1)[0], clock_shared=False)
        assert "submitted" not in payload
        shared = scheduler._payload(tiny_jobs(1)[0], clock_shared=True)
        assert "submitted" in shared

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_reports_zero_queue_wait(self):
        jobs = tiny_jobs(1)
        scheduler = BatchScheduler(workers=2, start_method="spawn")
        (result,) = scheduler.run(jobs)
        assert result.succeeded
        assert result.queue_seconds == 0.0
        assert scheduler.stats.queue_seconds == 0.0


# ---------------------------------------------------------------------------
# Telemetry: failure traffic reaches stats and the metrics registry
# ---------------------------------------------------------------------------


class TestFailureTelemetry:
    def test_failure_counters_flow_into_cache_telemetry(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = tiny_jobs(2)
        faults.configure("worker.crash=1.0:once")
        BatchScheduler(workers=2, cache=cache).run(jobs)
        telemetry = cache.telemetry()
        totals = telemetry["totals"]
        assert totals["retries"] == 2
        assert totals["worker_kills"] == 2
        last = telemetry["last_run"]["scheduler"]
        assert last["retries"] == 2 and last["pool_rebuilds"] >= 1

    def test_stats_as_dict_has_failure_keys(self):
        scheduler = BatchScheduler(workers=1)
        scheduler.run(tiny_jobs(1))
        data = scheduler.stats.as_dict()
        for key in (
            "retries",
            "worker_kills",
            "hard_timeouts",
            "poisoned",
            "pool_rebuilds",
            "degraded_serial",
        ):
            assert data[key] == 0  # present, and zero on a fault-free run
