"""Shared pytest configuration for the reproduction's test suite."""

import os

import pytest
from hypothesis import HealthCheck, settings

# Synthesis-backed property tests re-run the (deterministic, cached) synthesizer
# inside Hypothesis; suppress the corresponding health checks globally.
settings.register_profile(
    "repro",
    suppress_health_check=(HealthCheck.function_scoped_fixture, HealthCheck.too_slow),
    deadline=None,
)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run the slow synthesis benchmarks (common, diff, insert, ...)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slow end-to-end synthesis tests")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("REPRO_FULL"):
        return
    skip_slow = pytest.mark.skip(reason="slow synthesis test; use --run-slow or REPRO_FULL=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
