"""Shared pytest configuration and service-test helpers.

The helper functions (``tiny_goal``/``tiny_jobs``/``canon``/…) are plain
importable functions rather than fixtures so test modules can use them in
parametrize decorators and module-level constants::

    from conftest import tiny_goal, tiny_jobs, canon
"""

import os

import pytest
from hypothesis import HealthCheck, settings

# Synthesis-backed property tests re-run the (deterministic, cached) synthesizer
# inside Hypothesis; suppress the corresponding health checks globally.
settings.register_profile(
    "repro",
    suppress_health_check=(HealthCheck.function_scoped_fixture, HealthCheck.too_slow),
    deadline=None,
)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run the slow synthesis benchmarks (common, diff, insert, ...)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slow end-to-end synthesis tests")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("REPRO_FULL"):
        return
    skip_slow = pytest.mark.skip(reason="slow synthesis test; use --run-slow or REPRO_FULL=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


# ---------------------------------------------------------------------------
# Shared service-test helpers (used by test_service / test_faults /
# test_serve / test_cache_shards / test_codec_fuzz)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _inert_faults(monkeypatch):
    """Every test starts and ends with no fault plan installed.

    Autouse suite-wide: a fault plan leaking out of one chaos test (via the
    ``REPRO_FAULTS`` env or a ``faults.configure`` override) would silently
    inject crashes into unrelated tests.
    """
    from repro.service import faults

    monkeypatch.delenv(faults.ENV_SPEC, raising=False)
    monkeypatch.delenv(faults.ENV_SEED, raising=False)
    faults.configure(None)
    yield
    faults.configure(None)


def tiny_goal(name: str = "isEmpty"):
    """The cheapest synthesizable goal (is-empty check, <50ms)."""
    from repro.core import SynthesisGoal, library
    from repro.logic import terms as t
    from repro.typing.types import TypeSchema, arrow, bool_type, list_type, tvar_type

    xs = t.data_var("xs")
    schema = TypeSchema(
        ("a",),
        arrow(
            ("xs", list_type(tvar_type("a", potential=t.ONE))),
            bool_type(t.Iff(t.Var("_v", t.BOOL), t.len_(xs).eq(0))),
        ),
    )
    return SynthesisGoal.create(name, schema, library())


def tiny_config():
    from repro.core import SynthesisConfig

    return SynthesisConfig.resyn(max_arg_depth=1, max_match_depth=1, max_cond_depth=0)


def tiny_jobs(count: int = 2, timeout=None, retries=None):
    """Distinct cheap jobs (distinct fingerprints, so no in-batch dedup)."""
    from repro.service.scheduler import job_for_goal

    return [
        job_for_goal(tiny_goal(f"isEmpty{i}"), tiny_config(), timeout=timeout, retries=retries)
        for i in range(count)
    ]


#: Record fields that legitimately differ between byte-identical runs:
#: wall-clock, process placement, cache bookkeeping, and the solver "stats"
#: blob, whose cache-hit counters depend on how warm the executing *process*
#: already was (a forked worker inherits the parent's caches) rather than on
#: what the job computed.  ``warm`` is the per-job warm-state counter block —
#: reuse telemetry, stripped for the same reason.  Everything else — the
#: program, its size, and the search counters — must match exactly.
RUN_LOCAL_FIELDS = frozenset(
    {"seconds", "worker_pid", "stored_at", "fingerprint", "stats", "warm"}
)


def canon(record):
    """A record minus its run-local fields — the byte-identity comparand."""
    assert record is not None
    return {key: value for key, value in record.items() if key not in RUN_LOCAL_FIELDS}


def records_of(results):
    return [canon(result.record) for result in results]


def baseline_records(jobs):
    """Fault-free serial reference records for ``jobs``."""
    from repro.service.scheduler import BatchScheduler

    return records_of(BatchScheduler(workers=1).run(jobs))
