"""Property/fuzz round-trip suite for the wire codec, specs and fingerprints.

Strategy: *seeded* random generators build sort-correct refinement terms,
Re2 types, programs, goals and configurations — the same seed always builds
the same value, so a failure reproduces from the test id alone.  For every
generated value ``x`` the codec must satisfy:

* **round-trip**  ``decode(encode(x)) == x`` (structural equality);
* **fixpoint**    ``encode(decode(encode(x))) == encode(x)`` (encoding is
  canonical — decoding never "normalizes" into a different wire form);
* **JSON-able**   ``json.loads(json.dumps(encode(x))) == encode(x)``;
* **fingerprint stability** — a goal/config pair fingerprints identically
  before and after any number of encode/decode cycles.
"""

import json
import random

import pytest

from repro.core import ExampleGoal, SynthesisGoal
from repro.core.components import STANDARD_COMPONENTS
from repro.pbe.examples import IOExample, canonical_example_key
from repro.pbe.grammar import KINDS, Grammar, ProductionRule
from repro.semantics.values import LEAF, VTree
from repro.lang import syntax as s
from repro.logic import terms as t
from repro.logic.sorts import BOOL, INT
from repro.service.codec import (
    CodecError,
    config_from_json,
    config_from_mode,
    config_from_wire,
    config_to_json,
    goal_from_json,
    goal_to_json,
    program_from_json,
    program_to_json,
    schema_from_json,
    schema_to_json,
    term_from_json,
    term_to_json,
)
from repro.service.fingerprint import canonical_json, job_fingerprint
from repro.service.specs import export_table_spec, jobs_from_spec, load_spec, write_spec
from repro.typing.types import (
    ArrowType,
    BoolBase,
    IntBase,
    ListBase,
    RType,
    TreeBase,
    TypeSchema,
    TypeVarBase,
)

SEEDS = range(20)

# ---------------------------------------------------------------------------
# Seeded generators (sort-correct by construction)
# ---------------------------------------------------------------------------


def _name(rng, prefix="v"):
    return f"{prefix}{rng.randrange(4)}"


def gen_int_term(rng, depth):
    if depth <= 0:
        return rng.choice(
            [
                lambda: t.IntConst(rng.randrange(-3, 4)),
                lambda: t.Var(_name(rng, "n"), INT),
            ]
        )()
    pick = rng.randrange(5)
    if pick == 0:
        return t.Add(gen_int_term(rng, depth - 1), gen_int_term(rng, depth - 1))
    if pick == 1:
        return t.Sub(gen_int_term(rng, depth - 1), gen_int_term(rng, depth - 1))
    if pick == 2:
        return t.Mul(gen_int_term(rng, depth - 1), gen_int_term(rng, depth - 1))
    if pick == 3:
        return t.Ite(
            gen_bool_term(rng, depth - 1),
            gen_int_term(rng, depth - 1),
            gen_int_term(rng, depth - 1),
        )
    return t.App(
        _name(rng, "f"), (gen_int_term(rng, depth - 1),), INT
    )


def gen_set_term(rng, depth):
    if depth <= 0:
        return rng.choice(
            [lambda: t.EmptySet(), lambda: t.SetSingleton(gen_int_term(rng, 0))]
        )()
    ctor = rng.choice([t.SetUnion, t.SetIntersect, t.SetDiff])
    return ctor(gen_set_term(rng, depth - 1), gen_set_term(rng, depth - 1))


def gen_bool_term(rng, depth):
    if depth <= 0:
        return rng.choice(
            [
                lambda: t.BoolConst(rng.random() < 0.5),
                lambda: t.Var(_name(rng, "b"), BOOL),
            ]
        )()
    pick = rng.randrange(8)
    if pick == 0:
        ctor = rng.choice([t.Le, t.Lt, t.Ge, t.Gt, t.Eq])
        return ctor(gen_int_term(rng, depth - 1), gen_int_term(rng, depth - 1))
    if pick == 1:
        ctor = rng.choice([t.Implies, t.Iff])
        return ctor(gen_bool_term(rng, depth - 1), gen_bool_term(rng, depth - 1))
    if pick == 2:
        return t.Not(gen_bool_term(rng, depth - 1))
    if pick == 3:
        args = tuple(gen_bool_term(rng, depth - 1) for _ in range(rng.randrange(2, 4)))
        return rng.choice([t.And, t.Or])(args)
    if pick == 4:
        return t.SetMember(gen_int_term(rng, depth - 1), gen_set_term(rng, depth - 1))
    if pick == 5:
        return t.SetSubset(gen_set_term(rng, depth - 1), gen_set_term(rng, depth - 1))
    if pick == 6:
        return t.SetAll(
            _name(rng, "e"), gen_set_term(rng, depth - 1), gen_bool_term(rng, depth - 1)
        )
    return t.Ite(
        gen_bool_term(rng, depth - 1),
        gen_bool_term(rng, depth - 1),
        gen_bool_term(rng, depth - 1),
    )


def gen_rtype(rng, depth):
    pick = rng.randrange(5) if depth > 0 else rng.randrange(3)
    if pick == 0:
        base = BoolBase()
    elif pick == 1:
        base = IntBase()
    elif pick == 2:
        base = TypeVarBase(_name(rng, "a"))
    elif pick == 3:
        base = ListBase(gen_rtype(rng, depth - 1), rng.random() < 0.3)
    else:
        base = TreeBase(gen_rtype(rng, depth - 1))
    refinement = t.TRUE if rng.random() < 0.5 else gen_bool_term(rng, 1)
    potential = t.ZERO if rng.random() < 0.5 else gen_int_term(rng, 1)
    return RType(base, refinement, potential)


def gen_arrow(rng, depth):
    result = gen_rtype(rng, depth) if depth <= 0 or rng.random() < 0.6 else gen_arrow(rng, depth - 1)
    return ArrowType(_name(rng, "x"), gen_rtype(rng, depth), result, rng.randrange(3))


def gen_schema(rng):
    tvars = tuple(f"a{i}" for i in range(rng.randrange(3)))
    return TypeSchema(tvars, gen_arrow(rng, 2))


def gen_program(rng, depth):
    if depth <= 0:
        return rng.choice(
            [
                lambda: s.Var(_name(rng)),
                lambda: s.BoolLit(rng.random() < 0.5),
                lambda: s.IntLit(rng.randrange(-2, 3)),
                lambda: s.Nil(),
                lambda: s.Leaf(),
                lambda: s.Impossible(),
            ]
        )()
    pick = rng.randrange(10)
    child = lambda: gen_program(rng, depth - 1)  # noqa: E731
    if pick == 0:
        return s.Cons(child(), child())
    if pick == 1:
        return s.Node(child(), child(), child())
    if pick == 2:
        args = tuple(child() for _ in range(rng.randrange(1, 3)))
        return s.App(_name(rng, "f"), args)
    if pick == 3:
        return s.If(child(), child(), child())
    if pick == 4:
        return s.MatchList(child(), child(), _name(rng, "h"), _name(rng, "t"), child())
    if pick == 5:
        return s.MatchTree(
            child(), child(), _name(rng, "l"), _name(rng, "v"), _name(rng, "r"), child()
        )
    if pick == 6:
        return s.Let(_name(rng), child(), child())
    if pick == 7:
        params = tuple(_name(rng, "p") for _ in range(rng.randrange(1, 3)))
        return rng.choice(
            [lambda: s.Lambda(params, child()), lambda: s.Fix(_name(rng, "g"), params, child())]
        )()
    if pick == 8:
        return s.Tick(rng.randrange(3), child())
    return child()


def gen_goal(rng):
    names = sorted(STANDARD_COMPONENTS)
    count = rng.randrange(len(names) + 1)
    components = [STANDARD_COMPONENTS[name] for name in rng.sample(names, count)]
    return SynthesisGoal.create(_name(rng, "goal"), gen_schema(rng), components)


def gen_value(rng, depth):
    pick = rng.randrange(5) if depth > 0 else rng.randrange(2)
    if pick == 0:
        return rng.randrange(-5, 6)
    if pick == 1:
        return rng.random() < 0.5
    if pick == 2:
        return tuple(gen_value(rng, depth - 1) for _ in range(rng.randrange(3)))
    if pick == 3:
        return LEAF
    return VTree(LEAF, gen_value(rng, depth - 1), LEAF)


def gen_grammar(rng):
    rules = {}
    for kind in KINDS:
        if rng.random() < 0.5:
            continue
        components = None
        if rng.random() < 0.5:
            names = sorted(STANDARD_COMPONENTS)
            components = tuple(rng.sample(names, rng.randrange(len(names) + 1)))
        rules[kind] = ProductionRule(
            components=components,
            literals=rng.random() < 0.8,
            constructors=rng.random() < 0.8,
            recursion=rng.random() < 0.8,
            variables=rng.random() < 0.9,
        )
    return Grammar.create(rules)


def gen_example_goal(rng):
    plain = gen_goal(rng)
    arity = len(plain.schema.body.params())
    examples = [
        IOExample.create(tuple(gen_value(rng, 2) for _ in range(arity)), gen_value(rng, 2))
        for _ in range(rng.randrange(1, 5))
    ]
    grammar = gen_grammar(rng) if rng.random() < 0.6 else None
    return ExampleGoal.create_with_examples(
        plain.name, plain.schema, plain.components, examples, grammar
    )


MODES = ("resyn", "synquid", "eac", "noninc", "constant_resource")


def gen_overrides(rng):
    overrides = {}
    if rng.random() < 0.6:
        overrides["max_arg_depth"] = rng.randrange(1, 4)
    if rng.random() < 0.6:
        overrides["max_match_depth"] = rng.randrange(0, 3)
    if rng.random() < 0.4:
        overrides["max_cond_depth"] = rng.randrange(0, 3)
    if rng.random() < 0.4:
        overrides["max_candidates"] = rng.randrange(10, 10_000)
    if rng.random() < 0.3:
        overrides["enumerate_and_check"] = rng.random() < 0.5
    if rng.random() < 0.3:
        overrides["timeout"] = round(rng.uniform(0.1, 60.0), 3)
    return overrides


def gen_config(rng):
    return config_from_mode(rng.choice(MODES), gen_overrides(rng))


def assert_roundtrip(value, encode, decode):
    wire = encode(value)
    assert json.loads(json.dumps(wire)) == wire  # strictly JSON-able
    rebuilt = decode(wire)
    assert rebuilt == value
    assert encode(rebuilt) == wire  # encoding is a fixpoint


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_term_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(10):
        assert_roundtrip(gen_bool_term(rng, 3), term_to_json, term_from_json)
        assert_roundtrip(gen_int_term(rng, 3), term_to_json, term_from_json)
        assert_roundtrip(gen_set_term(rng, 3), term_to_json, term_from_json)


@pytest.mark.parametrize("seed", SEEDS)
def test_schema_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(10):
        assert_roundtrip(gen_schema(rng), schema_to_json, schema_from_json)


@pytest.mark.parametrize("seed", SEEDS)
def test_program_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(10):
        program = gen_program(rng, 4)
        assert_roundtrip(program, program_to_json, program_from_json)
        # The pretty-printer must agree too (cached records ship the text).
        assert str(program_from_json(program_to_json(program))) == str(program)


@pytest.mark.parametrize("seed", SEEDS)
def test_goal_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(5):
        assert_roundtrip(gen_goal(rng), goal_to_json, goal_from_json)


@pytest.mark.parametrize("seed", SEEDS)
def test_config_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(10):
        assert_roundtrip(gen_config(rng), config_to_json, config_from_json)


@pytest.mark.parametrize("seed", SEEDS)
def test_example_goal_roundtrip_fuzz(seed):
    rng = random.Random(seed)
    for _ in range(5):
        goal = gen_example_goal(rng)
        assert_roundtrip(goal, goal_to_json, goal_from_json)
        assert isinstance(goal_from_json(goal_to_json(goal)), ExampleGoal)


@pytest.mark.parametrize("seed", SEEDS)
def test_example_goal_reorder_invariance(seed):
    """Examples are canonically ordered: goals built from any permutation of
    the same example set are equal, encode identically and fingerprint
    identically."""
    rng = random.Random(seed)
    goal = gen_example_goal(rng)
    config = gen_config(rng)
    shuffled = list(goal.examples)
    rng.shuffle(shuffled)
    regoal = ExampleGoal.create_with_examples(
        goal.name, goal.schema, goal.components, shuffled, goal.grammar
    )
    assert regoal == goal
    assert goal_to_json(regoal) == goal_to_json(goal)
    assert job_fingerprint(regoal, config) == job_fingerprint(goal, config)


@pytest.mark.parametrize("seed", SEEDS)
def test_examples_separate_fingerprints(seed):
    """Goals that differ only in their examples must never collide."""
    rng = random.Random(seed)
    goal = gen_example_goal(rng)
    config = gen_config(rng)
    existing = {canonical_example_key(e) for e in goal.examples}
    extra = None
    while extra is None or canonical_example_key(extra) in existing:
        arity = len(goal.examples[0].inputs)
        extra = IOExample.create(
            tuple(gen_value(rng, 2) for _ in range(arity)), gen_value(rng, 2)
        )
    grown = ExampleGoal.create_with_examples(
        goal.name, goal.schema, goal.components, list(goal.examples) + [extra], goal.grammar
    )
    assert job_fingerprint(grown, config) != job_fingerprint(goal, config)
    # A plain goal with the same name/schema/components is distinct too.
    plain = SynthesisGoal.create(goal.name, goal.schema, goal.components)
    assert job_fingerprint(plain, config) != job_fingerprint(goal, config)


@pytest.mark.parametrize("seed", SEEDS)
def test_example_goal_fingerprint_stable_under_codec_cycles(seed):
    rng = random.Random(seed)
    goal, config = gen_example_goal(rng), gen_config(rng)
    base = job_fingerprint(goal, config)
    cycled = goal
    for _ in range(3):
        cycled = goal_from_json(json.loads(json.dumps(goal_to_json(cycled))))
        assert job_fingerprint(cycled, config) == base


# ---------------------------------------------------------------------------
# Fingerprint stability
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprint_stable_under_codec_cycles(seed):
    rng = random.Random(seed)
    goal, config = gen_goal(rng), gen_config(rng)
    base = job_fingerprint(goal, config)
    cycled_goal, cycled_config = goal, config
    for _ in range(3):
        cycled_goal = goal_from_json(json.loads(json.dumps(goal_to_json(cycled_goal))))
        cycled_config = config_from_json(json.loads(json.dumps(config_to_json(cycled_config))))
        assert job_fingerprint(cycled_goal, cycled_config) == base


@pytest.mark.parametrize("seed", SEEDS)
def test_canonical_json_is_deterministic(seed):
    rng = random.Random(seed)
    wire = goal_to_json(gen_goal(rng))
    # Key order must not matter: canonicalizing a reordered copy is identical.
    reordered = json.loads(json.dumps(wire, sort_keys=True))
    assert canonical_json(wire) == canonical_json(reordered)


# ---------------------------------------------------------------------------
# Wire-config decoding (the server's config entry point)
# ---------------------------------------------------------------------------


class TestConfigFromWire:
    def test_empty_defaults_to_resyn(self):
        from repro.core import SynthesisConfig

        assert config_from_wire(None) == SynthesisConfig.resyn()
        assert config_from_wire({}) == SynthesisConfig.resyn()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mode_shape_matches_config_from_mode(self, seed):
        rng = random.Random(seed)
        mode, overrides = rng.choice(MODES), gen_overrides(rng)
        wire = {"mode": mode, "overrides": overrides}
        assert config_from_wire(wire) == config_from_mode(mode, overrides)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_explicit_shape_matches_config_from_json(self, seed):
        rng = random.Random(seed)
        wire = config_to_json(gen_config(rng))
        assert config_from_wire(wire) == config_from_json(wire)

    def test_rejects_bad_shapes(self):
        with pytest.raises(CodecError):
            config_from_wire("resyn")
        with pytest.raises(CodecError):
            config_from_wire({"mode": "resyn", "max_arg_depth": 2})
        with pytest.raises(CodecError):
            config_from_wire({"mode": "no-such-mode"})
        with pytest.raises(CodecError):
            config_from_wire({"no_such_field": 1})


# ---------------------------------------------------------------------------
# Spec files round-trip through disk
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("table", ["table1", "table2"])
def test_spec_write_load_roundtrip(table, tmp_path):
    spec = export_table_spec(table)
    path = tmp_path / f"{table}.json"
    write_spec(spec, str(path))
    loaded = load_spec(str(path))
    assert loaded == spec
    original = jobs_from_spec(spec, include_slow=True)
    reloaded = jobs_from_spec(loaded, include_slow=True)
    assert [job.fingerprint for job in reloaded] == [job.fingerprint for job in original]
    assert [job.tag for job in reloaded] == [job.tag for job in original]
