# Common entry points for builders and CI.  The PYTHONPATH juggling mirrors
# the tier-1 command documented in ROADMAP.md, so `make test` and the CI run
# are the same thing.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-quick bench-table1 bench-table2

## Tier-1 verification: the full pytest suite (fails fast).
test:
	$(PYTHON) -m pytest -x -q

## Quick perf benchmark: fast Table 1 subset; writes BENCH_synthesis.json
## at the repository root (tracked across PRs).
bench-quick:
	$(PYTHON) benchmarks/bench_quick.py

## Reproduce the paper tables on the fast subsets (REPRO_FULL=1 for all rows).
bench-table1:
	$(PYTHON) -m repro.benchsuite.run_table1

bench-table2:
	$(PYTHON) -m repro.benchsuite.run_table2
