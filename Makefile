# Common entry points for builders and CI.  The PYTHONPATH juggling mirrors
# the tier-1 command documented in ROADMAP.md, so `make test` and the CI run
# are the same thing.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench-quick check-regression bench-table1 bench-table2 specs service-smoke serve-smoke chaos-smoke pbe-smoke portfolio-smoke profile

## Tier-1 verification: the full pytest suite (fails fast).
test:
	$(PYTHON) -m pytest -x -q

## Static checks: ruff lint rules + formatting drift (configured in
## pyproject.toml).  This is exactly what the CI lint job runs.
lint:
	$(PYTHON) -m ruff check .
	$(PYTHON) -m ruff format --check .

## Quick perf benchmark: fast Table 1 subset; writes BENCH_synthesis.json
## at the repository root (tracked across PRs).
bench-quick:
	$(PYTHON) benchmarks/bench_quick.py

## Regenerate the quick benchmark into a scratch file and compare against the
## committed baseline (fails on program drift or >25% wall-clock regression).
## This is what CI runs; see .github/workflows/ci.yml.
check-regression:
	$(PYTHON) benchmarks/bench_quick.py /tmp/bench_fresh.json
	$(PYTHON) benchmarks/check_regression.py BENCH_synthesis.json /tmp/bench_fresh.json

## Reproduce the paper tables on the fast subsets (REPRO_FULL=1 for all rows).
bench-table1:
	$(PYTHON) -m repro.benchsuite.run_table1

bench-table2:
	$(PYTHON) -m repro.benchsuite.run_table2

## Regenerate the committed declarative goal specs from the benchmark
## definitions (CI diffs specs/ against a fresh export).
specs:
	$(PYTHON) -m repro.service export --dir specs

## Traced run of the quick suite: writes trace.jsonl + profile.folded (the
## flamegraph input) to /tmp/repro-profile and prints the phase-time table.
## Fails if the spans cover <90% of the synthesis wall-clock.
profile:
	$(PYTHON) benchmarks/profile_quick.py

## What the CI service-smoke job runs: a cold 2-worker scheduler pass over
## the Table 1 spec, then a warm rerun that must be 100% cache hits.
service-smoke:
	rm -rf /tmp/resyn-smoke-cache
	$(PYTHON) -m repro.service run specs/table1.json -j 2 --cache /tmp/resyn-smoke-cache
	$(PYTHON) -m repro.service run specs/table1.json -j 2 --cache /tmp/resyn-smoke-cache --expect-all-hits
	$(PYTHON) -m repro.service stats /tmp/resyn-smoke-cache

## What the CI serve-smoke job runs: boot the long-running server (resident
## warm workers + sharded cache + HTTP front-end), submit the fast Table 1
## spec cold then warm over real HTTP (the warm pass must be 100% cache
## hits with nonzero warm-state reuse), then prove the REPRO_WARM=off A/B
## byte-identity guard.  Prints a markdown report for the step summary.
serve-smoke:
	rm -rf /tmp/resyn-serve-cache
	$(PYTHON) benchmarks/check_serve.py --spec specs/table1.json --cache /tmp/resyn-serve-cache

## What the CI pbe-smoke job runs: the example-driven suite cold through the
## service (2 workers), a warm rerun that must be 100% cache hits, then
## benchmarks/check_pbe.py verifies spec freshness, program identity across
## runs, the grammar-pruning eterm_checks reduction, and that every solved
## program satisfies every example by direct interpretation.
pbe-smoke:
	rm -rf /tmp/resyn-pbe-cache
	$(PYTHON) -m repro.service run specs/pbe_suite.json -j 2 \
	  --cache /tmp/resyn-pbe-cache --json /tmp/pbe-cold.json
	$(PYTHON) -m repro.service run specs/pbe_suite.json -j 2 \
	  --cache /tmp/resyn-pbe-cache --expect-all-hits --json /tmp/pbe-warm.json
	$(PYTHON) benchmarks/check_pbe.py /tmp/pbe-cold.json /tmp/pbe-warm.json

## What the CI portfolio-smoke job runs: the committed asymptotic suite cold
## through the portfolio scheduler on 2 workers, twice, plus a
## REPRO_PORTFOLIO=off sequential ladder walk.  Fails unless every goal is
## solved with its expected winner rung, winners and programs are
## byte-identical across runs and modes, and the race cancelled at least one
## losing variant (losers must be reclaimed, not left to run dry).
portfolio-smoke:
	$(PYTHON) benchmarks/check_portfolio.py --workers 2

## What the CI chaos-smoke job runs: the Table 1 spec under deterministic
## fault injection (worker crashes + hangs, torn cache writes, read
## corruption) must produce programs byte-identical to a fault-free run,
## within bounded wall-clock, with the failure traffic visible in telemetry.
## Seed 7 is chosen so the fast subset draws 2 crashes and 2 hangs (see
## benchmarks/check_chaos.py for the contract being enforced).
chaos-smoke:
	rm -rf /tmp/resyn-chaos-clean /tmp/resyn-chaos-cache
	$(PYTHON) -m repro.service run specs/table1.json -j 2 \
	  --cache /tmp/resyn-chaos-clean --json /tmp/chaos-baseline.json
	REPRO_FAULTS="worker.crash=0.4:once,worker.hang=0.15:once,cache.write_torn=0.4" \
	REPRO_FAULTS_SEED=7 \
	  timeout 300 $(PYTHON) -m repro.service run specs/table1.json -j 2 \
	  --cache /tmp/resyn-chaos-cache --timeout 10 --hard-timeout 2 \
	  --json /tmp/chaos-cold.json
	REPRO_FAULTS="cache.read_corrupt=0.5:once" REPRO_FAULTS_SEED=7 \
	  timeout 300 $(PYTHON) -m repro.service run specs/table1.json -j 2 \
	  --cache /tmp/resyn-chaos-cache --timeout 10 --hard-timeout 2 \
	  --json /tmp/chaos-warm.json
	$(PYTHON) -m repro.service stats /tmp/resyn-chaos-cache --json > /tmp/chaos-stats.json
	$(PYTHON) benchmarks/check_chaos.py /tmp/chaos-baseline.json \
	  /tmp/chaos-cold.json /tmp/chaos-warm.json --stats /tmp/chaos-stats.json \
	  --require retries --require worker_kills --require hard_timeouts \
	  --require pool_rebuilds --require cache_quarantined
